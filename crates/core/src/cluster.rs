//! Cluster construction: one network, a Taint Map deployment, N VMs.

use dista_jre::{Mode, Vm, WireProtocol};
use dista_obs::{
    reconstruct, reconstruct_inferred, to_chrome_trace, to_jsonl, to_text_report, FlightRecorder,
    MetricsDump, ObsConfig, ObsEvent, ObsEventKind, ObsReport, Observability, ProvenanceTrace,
};
use dista_simnet::{FaultPlan, FaultTrigger, MigrationVictim, NodeAddr, SimFs, SimNet};
use dista_taint::{SinkReport, SourceSinkSpec};
use dista_taintmap::{TaintMapConfig, TaintMapEndpoint, TaintMapEndpointBuilder};

use crate::error::DistaError;
use crate::telemetry::{TelemetryConfig, TelemetryPlane};

/// Builder for [`Cluster`].
///
/// The Taint Map deployment is configured either with the individual
/// knobs ([`ClusterBuilder::taint_map_addr`],
/// [`ClusterBuilder::taint_map_config`],
/// [`ClusterBuilder::taint_map_shards`],
/// [`ClusterBuilder::taint_map_standby`]) or by handing over a complete
/// [`TaintMapEndpointBuilder`] via
/// [`ClusterBuilder::taint_map_endpoint`] — never both.
/// [`ClusterBuilder::build`] rejects the combination with
/// [`DistaError::Config`] rather than silently picking a winner.
#[derive(Debug)]
pub struct ClusterBuilder {
    mode: Mode,
    nodes: Vec<(String, [u8; 4])>,
    spec: SourceSinkSpec,
    gid_width: usize,
    wire_protocol: WireProtocol,
    node_wire_protocols: Vec<(String, WireProtocol)>,
    taint_map_addr: Option<NodeAddr>,
    taint_map_config: Option<TaintMapConfig>,
    taint_map_shards: Option<usize>,
    taint_map_standby: Option<bool>,
    taint_map_endpoint: Option<TaintMapEndpointBuilder>,
    taint_map_snapshots: Option<bool>,
    net: Option<SimNet>,
    observability: Option<ObsConfig>,
    telemetry: Option<TelemetryConfig>,
    chaos: Option<FaultPlan>,
}

impl ClusterBuilder {
    /// Adds a node with a name and IP; one VM is built per node.
    pub fn node(mut self, name: impl Into<String>, ip: [u8; 4]) -> Self {
        self.nodes.push((name.into(), ip));
        self
    }

    /// Adds `n` nodes named `prefix1..prefixN` on `10.0.0.1..N`.
    pub fn nodes(mut self, prefix: &str, n: usize) -> Self {
        for i in 1..=n {
            self.nodes
                .push((format!("{prefix}{i}"), [10, 0, 0, i as u8]));
        }
        self
    }

    /// Installs the source/sink specification on every VM.
    pub fn spec(mut self, spec: SourceSinkSpec) -> Self {
        self.spec = spec;
        self
    }

    /// Overrides the Global ID wire width.
    pub fn gid_width(mut self, width: usize) -> Self {
        self.gid_width = width;
        self
    }

    /// Sets the wire-protocol policy every VM starts with (default
    /// [`WireProtocol::V1`], the paper's interleaved record format).
    /// [`WireProtocol::Negotiate`] upgrades each connection to v2 when
    /// the peer speaks it and falls back to v1 otherwise, so it mixes
    /// freely with pinned-v1 nodes. [`WireProtocol::V2`] skips the
    /// handshake entirely and therefore only interoperates with other
    /// pinned-v2 nodes — [`ClusterBuilder::build`] rejects mixed
    /// pinned-v2 clusters with [`DistaError::Config`].
    pub fn wire_protocol(mut self, protocol: WireProtocol) -> Self {
        self.wire_protocol = protocol;
        self
    }

    /// Overrides the wire-protocol policy for one node (by name) — e.g.
    /// to model a partially upgraded cluster of Negotiate nodes with a
    /// few un-upgraded pinned-v1 stragglers.
    pub fn node_wire_protocol(mut self, name: impl Into<String>, protocol: WireProtocol) -> Self {
        self.node_wire_protocols.push((name.into(), protocol));
        self
    }

    /// Overrides the Taint Map base address (shard `i` binds at
    /// `port + 2i`, its standby at `port + 2i + 1`).
    pub fn taint_map_addr(mut self, addr: NodeAddr) -> Self {
        self.taint_map_addr = Some(addr);
        self
    }

    /// Tunes the Taint Map service (throttling ablations).
    pub fn taint_map_config(mut self, config: TaintMapConfig) -> Self {
        self.taint_map_config = Some(config);
        self
    }

    /// Shards the Taint Map's Global ID namespace `n` ways (default 1).
    pub fn taint_map_shards(mut self, n: usize) -> Self {
        self.taint_map_shards = Some(n);
        self
    }

    /// Spawns a replicated standby per Taint Map shard (§IV failover).
    pub fn taint_map_standby(mut self, enabled: bool) -> Self {
        self.taint_map_standby = Some(enabled);
        self
    }

    /// Supplies a fully configured Taint Map deployment builder instead
    /// of the individual knobs. Mutually exclusive with
    /// [`ClusterBuilder::taint_map_addr`] /
    /// [`ClusterBuilder::taint_map_config`] /
    /// [`ClusterBuilder::taint_map_shards`] /
    /// [`ClusterBuilder::taint_map_standby`].
    pub fn taint_map_endpoint(mut self, builder: TaintMapEndpointBuilder) -> Self {
        self.taint_map_endpoint = Some(builder);
        self
    }

    /// Gives every Taint Map shard primary a write-ahead snapshot log on
    /// a shared simulated file system, so a crashed primary restarts
    /// with zero lost registrations ([`Cluster::restart_shard`]).
    pub fn taint_map_snapshots(mut self, enabled: bool) -> Self {
        self.taint_map_snapshots = Some(enabled);
        self
    }

    /// Reuses an existing network instead of creating one.
    pub fn net(mut self, net: SimNet) -> Self {
        self.net = Some(net);
        self
    }

    /// Installs a deterministic fault schedule on the cluster's network.
    /// The plan's logical step clock starts counting after the cluster
    /// (Taint Map + VMs) is stood up, so step numbers refer to workload
    /// operations. Drive crash/restart triggers with
    /// [`Cluster::poll_chaos`].
    pub fn chaos(mut self, plan: FaultPlan) -> Self {
        self.chaos = Some(plan);
        self
    }

    /// Enables cluster-wide observability: every tracked-mode VM gets a
    /// flight recorder drawing from one shared cluster clock (so events
    /// totally order across nodes), and all taint instruments land in the
    /// network's metrics registry. Off by default — plain runs pay
    /// nothing.
    pub fn observability(mut self, config: ObsConfig) -> Self {
        self.observability = Some(config);
        self
    }

    /// Stands up the live telemetry plane alongside the cluster: one
    /// in-simulation collector (push + scrape endpoint at
    /// [`TelemetryConfig::addr`]) and a per-VM agent pushing metric
    /// deltas every [`TelemetryConfig::interval`]. Requires
    /// [`ClusterBuilder::observability`] — without it no per-node
    /// samples exist for the agents to ship, which
    /// [`ClusterBuilder::build`] rejects as [`DistaError::Config`].
    pub fn telemetry(mut self, config: TelemetryConfig) -> Self {
        self.telemetry = Some(config);
        self
    }

    /// Builds the cluster: network, Taint Map deployment (always started
    /// so any VM may be switched to DisTA mode later), and the VMs.
    ///
    /// # Errors
    ///
    /// [`DistaError::Config`] if both [`ClusterBuilder::taint_map_endpoint`]
    /// and an individual Taint Map knob were set; transport errors while
    /// standing up the Taint Map or clients.
    pub fn build(self) -> Result<Cluster, DistaError> {
        let endpoint_builder = match self.taint_map_endpoint {
            Some(builder) => {
                let mut conflicts = Vec::new();
                if self.taint_map_addr.is_some() {
                    conflicts.push("taint_map_addr");
                }
                if self.taint_map_config.is_some() {
                    conflicts.push("taint_map_config");
                }
                if self.taint_map_shards.is_some() {
                    conflicts.push("taint_map_shards");
                }
                if self.taint_map_standby.is_some() {
                    conflicts.push("taint_map_standby");
                }
                if self.taint_map_snapshots.is_some() {
                    conflicts.push("taint_map_snapshots");
                }
                if !conflicts.is_empty() {
                    return Err(DistaError::Config(format!(
                        "taint_map_endpoint conflicts with {}: configure the \
                         endpoint builder directly or use only the individual knobs",
                        conflicts.join(", ")
                    )));
                }
                builder
            }
            None => {
                let mut builder = TaintMapEndpoint::builder()
                    .addr(
                        self.taint_map_addr
                            .unwrap_or(NodeAddr::new([10, 0, 0, 99], 7777)),
                    )
                    .config(self.taint_map_config.unwrap_or_default())
                    .standby(self.taint_map_standby.unwrap_or(false));
                if let Some(shards) = self.taint_map_shards {
                    if shards == 0 {
                        return Err(DistaError::Config(
                            "taint_map_shards must be at least 1".into(),
                        ));
                    }
                    builder = builder.shards(shards);
                }
                if self.taint_map_snapshots == Some(true) {
                    builder = builder.snapshots(SimFs::new());
                }
                builder
            }
        };
        // Resolve each node's wire protocol (override or cluster-wide
        // default) and reject combinations that cannot interoperate: a
        // pinned-v2 VM sends no negotiation probe, so a v1 or Negotiate
        // peer would misparse its frames as v1 records. Pinned v2 is
        // therefore homogeneous-only; Negotiate mixes freely with v1.
        for (name, _) in &self.node_wire_protocols {
            if !self.nodes.iter().any(|(n, _)| n == name) {
                return Err(DistaError::Config(format!(
                    "node_wire_protocol names unknown node {name:?}"
                )));
            }
        }
        let mut node_protocols = Vec::with_capacity(self.nodes.len());
        for (name, _) in &self.nodes {
            let mut overrides = self
                .node_wire_protocols
                .iter()
                .filter(|(n, _)| n == name)
                .map(|(_, p)| *p);
            let resolved = overrides.next().unwrap_or(self.wire_protocol);
            if overrides.next().is_some() {
                return Err(DistaError::Config(format!(
                    "node_wire_protocol set more than once for node {name:?}"
                )));
            }
            node_protocols.push(resolved);
        }
        let pinned_v2: Vec<&str> = self
            .nodes
            .iter()
            .zip(&node_protocols)
            .filter(|(_, p)| matches!(p, WireProtocol::V2))
            .map(|((n, _), _)| n.as_str())
            .collect();
        let conflicts: Vec<&str> = self
            .nodes
            .iter()
            .zip(&node_protocols)
            .filter(|(_, p)| !matches!(p, WireProtocol::V2))
            .map(|((n, _), _)| n.as_str())
            .collect();
        if !pinned_v2.is_empty() && !conflicts.is_empty() {
            return Err(DistaError::Config(format!(
                "wire_protocol conflict: pinned-v2 nodes ({}) cannot interoperate \
                 with v1/negotiate nodes ({}): pinned v2 skips the version \
                 handshake, so pin every node to V2 or use Negotiate",
                pinned_v2.join(", "),
                conflicts.join(", ")
            )));
        }
        if self.telemetry.is_some() && self.observability.is_none() {
            return Err(DistaError::Config(
                "telemetry requires observability: enable \
                 ClusterBuilder::observability so VMs emit the per-node \
                 samples the agents push"
                    .into(),
            ));
        }
        let net = self.net.unwrap_or_default();
        let observability = match self.observability {
            Some(config) => Observability::with_registry(config, net.registry().clone()),
            None => Observability::disabled(),
        };
        let taint_map = endpoint_builder.connect(&net)?;
        let topology = taint_map.topology();
        let node_list = self.nodes.clone();
        let mut vms = Vec::with_capacity(self.nodes.len());
        for ((name, ip), protocol) in self.nodes.into_iter().zip(node_protocols) {
            vms.push(
                Vm::builder(name, &net)
                    .mode(self.mode)
                    .ip(ip)
                    .spec(self.spec.clone())
                    .gid_width(self.gid_width)
                    .wire_protocol(protocol)
                    .taint_map(topology.clone())
                    .observability(observability.clone())
                    .build()?,
            );
        }
        let chaos_recorder = observability.recorder_for("chaos");
        let telemetry = match self.telemetry {
            Some(config) => {
                // The Taint Map deployment gets its own agent, pushing
                // the `node="taintmap"` resharding/compaction counters
                // mirrored by `Cluster::metrics_dump` — isolating the
                // endpoint's IP silences its telemetry like any host's.
                let mut agents = node_list.clone();
                agents.push(("taintmap".to_string(), taint_map.addr().ip()));
                Some(TelemetryPlane::spawn(&net, &agents, config)?)
            }
            None => None,
        };
        // Arm the schedule last, so the logical step clock counts
        // workload operations, not cluster standup.
        if let Some(plan) = self.chaos {
            net.install_fault_plan(plan);
        }
        Ok(Cluster {
            net,
            mode: self.mode,
            taint_map: Some(taint_map),
            vms,
            observability,
            telemetry,
            chaos_recorder,
            fault_log_cursor: 0,
        })
    }
}

/// A declarative plan for [`Cluster::reshard`]: which residue classes
/// to split, in order (listing a class twice chains two splits, each
/// moving the then-current tail), plus the copy-phase batch size and
/// the chaos-repair budget.
#[derive(Debug, Clone)]
pub struct ReshardPlan {
    splits: Vec<usize>,
    batch: usize,
    max_repairs: usize,
}

impl Default for ReshardPlan {
    fn default() -> Self {
        ReshardPlan {
            splits: Vec::new(),
            batch: 512,
            max_repairs: 64,
        }
    }
}

impl ReshardPlan {
    /// An empty plan (split nothing).
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a split of residue class `class`'s tail range.
    pub fn split(mut self, class: usize) -> Self {
        self.splits.push(class);
        self
    }

    /// Copy-phase batch size in records (default 512). Smaller batches
    /// interleave more chaos polls per split; larger ones move faster.
    pub fn batch(mut self, records: usize) -> Self {
        self.batch = records.max(1);
        self
    }

    /// How many crash-and-heal repairs one split tolerates before
    /// [`Cluster::reshard`] gives up (default 64 — far above any finite
    /// chaos schedule).
    pub fn max_repairs(mut self, repairs: usize) -> Self {
        self.max_repairs = repairs;
        self
    }

    /// The classes this plan splits, in order.
    pub fn splits(&self) -> &[usize] {
        &self.splits
    }
}

/// A running simulated cluster.
#[derive(Debug)]
pub struct Cluster {
    net: SimNet,
    mode: Mode,
    taint_map: Option<TaintMapEndpoint>,
    vms: Vec<Vm>,
    observability: Observability,
    telemetry: Option<TelemetryPlane>,
    /// Sink for chaos-layer events (faults, shard crash/restart); merged
    /// into [`Cluster::obs_events`] alongside the per-VM recorders.
    chaos_recorder: FlightRecorder,
    /// How much of the network's applied-fault log has been mirrored
    /// into the chaos recorder.
    fault_log_cursor: usize,
}

impl Cluster {
    /// Starts building a cluster in `mode`.
    pub fn builder(mode: Mode) -> ClusterBuilder {
        ClusterBuilder {
            mode,
            nodes: Vec::new(),
            spec: SourceSinkSpec::new(),
            gid_width: 4,
            wire_protocol: WireProtocol::default(),
            node_wire_protocols: Vec::new(),
            taint_map_addr: None,
            taint_map_config: None,
            taint_map_shards: None,
            taint_map_standby: None,
            taint_map_endpoint: None,
            taint_map_snapshots: None,
            net: None,
            observability: None,
            telemetry: None,
            chaos: None,
        }
    }

    /// The cluster's tracking mode.
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// The shared network.
    pub fn net(&self) -> &SimNet {
        &self.net
    }

    /// The `i`-th VM (panics if out of range — cluster shape is static).
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn vm(&self, i: usize) -> &Vm {
        &self.vms[i]
    }

    /// VM by node name.
    pub fn vm_named(&self, name: &str) -> Option<&Vm> {
        self.vms.iter().find(|v| v.name() == name)
    }

    /// All VMs.
    pub fn vms(&self) -> &[Vm] {
        &self.vms
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.vms.len()
    }

    /// Whether the cluster has no nodes.
    pub fn is_empty(&self) -> bool {
        self.vms.is_empty()
    }

    /// The Taint Map deployment handle.
    ///
    /// # Panics
    ///
    /// Panics if the cluster was already shut down.
    pub fn taint_map(&self) -> &TaintMapEndpoint {
        self.taint_map.as_ref().expect("cluster already shut down")
    }

    /// Sink reports from every VM, in node order.
    pub fn sink_reports(&self) -> Vec<(String, SinkReport)> {
        self.vms
            .iter()
            .map(|vm| (vm.name().to_string(), vm.sink_report()))
            .collect()
    }

    /// Total sink events that observed tainted data, across all nodes.
    pub fn total_tainted_sink_events(&self) -> usize {
        self.vms
            .iter()
            .map(|vm| vm.sink_report().tainted_count())
            .sum()
    }

    /// The cluster's observability context (disabled unless
    /// [`ClusterBuilder::observability`] was used).
    pub fn observability(&self) -> &Observability {
        &self.observability
    }

    /// Every flight-recorder event from every VM, merged and sorted by
    /// cluster sequence number (all recorders draw from one shared
    /// clock, so this is a total order across nodes).
    pub fn obs_events(&self) -> Vec<ObsEvent> {
        let mut events: Vec<ObsEvent> = self
            .vms
            .iter()
            .flat_map(|vm| vm.flight_recorder().events())
            .chain(self.chaos_recorder.events())
            .collect();
        events.sort_by_key(|e| e.seq);
        events
    }

    /// Reconstructs the cross-VM provenance of Global ID `gid` from
    /// flight-recorder events alone: where it was minted, which sockets
    /// it crossed (with byte ranges), where it was registered/resolved
    /// in the Taint Map, and which sinks it reached.
    pub fn provenance(&self, gid: u32) -> ProvenanceTrace {
        reconstruct(&self.obs_events(), gid)
    }

    /// Like [`Cluster::provenance`], but ignoring wire-carried span
    /// annotations and using only the gid-matching heuristic — the view
    /// a v1-only cluster gets. Comparing the two shows what the v2
    /// annotation frames buy (`exact` provenance vs. reconstruction).
    pub fn provenance_inferred(&self, gid: u32) -> ProvenanceTrace {
        reconstruct_inferred(&self.obs_events(), gid)
    }

    /// The best available single trace for `gid`: the span-paired
    /// reconstruction when every crossing paired exactly (homogeneous
    /// v2 wire), otherwise the inferred view a v1 cluster gets. A
    /// cross-system pipeline calls this to stitch one hop-by-hop
    /// narrative across application boundaries without knowing which
    /// wire protocol each leg negotiated.
    pub fn provenance_stitched(&self, gid: u32) -> ProvenanceTrace {
        let exact = self.provenance(gid);
        if exact.exact {
            exact
        } else {
            self.provenance_inferred(gid)
        }
    }

    /// Records a [`ObsEventKind::PipelineStage`] flight event on the
    /// named VM's recorder, marking that a cross-system pipeline stage
    /// covering `records` records begins there, and marks the stage on
    /// the fault engine so stage-keyed chaos entries
    /// ([`dista_simnet::FaultPlanBuilder::crash_vm_at_stage`] and kin)
    /// fire at this boundary. Drive the resulting triggers with
    /// [`Cluster::poll_chaos`]. The flight event is a no-op when
    /// observability is disabled or the node is unknown; the stage mark
    /// always lands.
    pub fn record_pipeline_stage(&self, node: &str, stage: &str, records: u64) {
        if let Some(vm) = self.vms.iter().find(|vm| vm.name() == node) {
            vm.flight_recorder()
                .record_with(|| ObsEventKind::PipelineStage {
                    stage: stage.to_string(),
                    records,
                });
        }
        self.net.mark_stage(stage);
    }

    /// Snapshot of the cluster metrics registry, with point-in-time
    /// per-VM census families (taint-tree size, memo hit counts, shadow
    /// run counts, Taint Map client RPC totals) mirrored in first.
    ///
    /// Returns an empty dump when observability is disabled.
    pub fn metrics_dump(&self) -> MetricsDump {
        let Some(reg) = self.observability.registry() else {
            return MetricsDump::default();
        };
        for vm in &self.vms {
            let labels: &[(&str, &str)] = &[("node", vm.name())];
            let stats = vm.store().tree().stats();
            reg.gauge_with("taint_tree_nodes", labels)
                .set(stats.nodes as f64);
            reg.gauge_with("taint_tree_tags", labels)
                .set(stats.tags as f64);
            reg.gauge_with("taint_tree_memo_hits", labels)
                .set(stats.memo_hits as f64);
            reg.gauge_with("taint_tree_memo_misses", labels)
                .set(stats.memo_misses as f64);
            reg.gauge_with("shadow_runs", labels)
                .set(vm.shadow_run_census() as f64);
            if let Some(client) = vm.taint_map() {
                let cs = client.stats();
                reg.gauge_with("taintmap_register_rpcs", labels)
                    .set(cs.register_rpcs as f64);
                reg.gauge_with("taintmap_lookup_rpcs", labels)
                    .set(cs.lookup_rpcs as f64);
                reg.gauge_with("taintmap_batch_frames", labels)
                    .set(cs.batch_frames as f64);
                reg.gauge_with("taintmap_pending_gids", labels)
                    .set(cs.pending_gids as f64);
            }
        }
        self.mirror_taintmap_metrics();
        reg.snapshot()
    }

    /// Flight-recorder events as JSON Lines (one event object per line).
    pub fn export_jsonl(&self) -> String {
        to_jsonl(&self.obs_events())
    }

    /// Flight-recorder events in Chrome-trace format — load the string
    /// into `chrome://tracing` or Perfetto to see the cluster timeline,
    /// one process row per node.
    pub fn export_chrome_trace(&self) -> String {
        to_chrome_trace(&self.obs_events())
    }

    /// Plain-text cluster telemetry report: the metrics dump followed by
    /// the event log.
    pub fn obs_report(&self) -> String {
        to_text_report(&self.metrics_dump(), &self.obs_events())
    }

    /// Hot-path cost attribution rolled up from the phase counters
    /// (codec encode/decode, taint-tree ops, Taint Map round-trips).
    pub fn cost_report(&self) -> ObsReport {
        ObsReport::from_dump(&self.metrics_dump())
    }

    /// The live telemetry plane, when
    /// [`ClusterBuilder::telemetry`] was set.
    pub fn telemetry(&self) -> Option<&TelemetryPlane> {
        self.telemetry.as_ref()
    }

    /// Scrapes the in-simulation collector endpoint (Prometheus-style
    /// text exposition) over the simulated network.
    ///
    /// # Errors
    ///
    /// [`DistaError::Config`] if the plane is not enabled; transport
    /// errors reaching the collector.
    pub fn scrape_text(&self) -> Result<String, DistaError> {
        self.telemetry
            .as_ref()
            .ok_or_else(|| DistaError::Config("telemetry plane not enabled".into()))?
            .scrape_text()
    }

    /// JSON scrape of the in-simulation collector endpoint.
    ///
    /// # Errors
    ///
    /// Same as [`Cluster::scrape_text`].
    pub fn scrape_json(&self) -> Result<String, DistaError> {
        self.telemetry
            .as_ref()
            .ok_or_else(|| DistaError::Config("telemetry plane not enabled".into()))?
            .scrape_json()
    }

    /// Drives the chaos layer one tick: mirrors newly applied faults
    /// from the network's fault log into the event stream, then drains
    /// and executes the process-level triggers the network cannot apply
    /// itself (shard crash/restart, VM crash/restart). Call this between
    /// workload phases of a chaos run — the engine is operation-clocked,
    /// so polling cadence never changes *which* faults fire, only when
    /// the triggers are acted on.
    ///
    /// # Errors
    ///
    /// Errors from restarting a shard primary.
    pub fn poll_chaos(&mut self) -> Result<(), DistaError> {
        let log = self.net.fault_log();
        for applied in &log[self.fault_log_cursor..] {
            let fault = format!("step {}: {:?}", applied.step, applied.action);
            self.chaos_recorder
                .record_with(|| ObsEventKind::FaultInjected { fault });
        }
        self.fault_log_cursor = log.len();
        for trigger in self.net.take_fault_triggers() {
            match trigger {
                FaultTrigger::CrashShard(i) => self.crash_shard(i as usize),
                FaultTrigger::RestartShard(i) => {
                    self.restart_shard(i as usize)?;
                }
                FaultTrigger::CrashVm(node) => self.crash_vm(&node),
                FaultTrigger::RestartVm(node) => self.restart_vm(&node),
                FaultTrigger::CrashDuringMigration(victim) => self.crash_migration_victim(victim),
            }
        }
        Ok(())
    }

    /// Executes a [`FaultTrigger::CrashDuringMigration`]: crashes the
    /// requested side(s) of the in-flight split, if one is active (a
    /// scheduled migration crash against a workload that is not
    /// resharding is deliberately a no-op).
    fn crash_migration_victim(&mut self, victim: MigrationVictim) {
        let tm = self.taint_map.as_mut().expect("cluster already shut down");
        let Some((source, target)) = tm.active_split() else {
            return;
        };
        let crash_source = matches!(victim, MigrationVictim::Source | MigrationVictim::Both);
        let crash_target = matches!(victim, MigrationVictim::Target | MigrationVictim::Both);
        let mut crashed = Vec::new();
        if crash_source && !tm.primary_crashed(source) {
            tm.crash_primary(source);
            crashed.push(source);
        }
        if crash_target && !tm.primary_crashed(target) {
            tm.crash_primary(target);
            crashed.push(target);
        }
        for shard in crashed {
            self.chaos_recorder
                .record_with(|| ObsEventKind::ShardCrashed { shard });
        }
    }

    /// Executes `plan` against the live Taint Map: for every listed
    /// class, runs the three-phase split protocol (double-write arm,
    /// batched copy, cutover) with [`Cluster::poll_chaos`] interleaved
    /// between batches, so a scheduled
    /// [`FaultTrigger::CrashDuringMigration`] (or shard crash) lands
    /// mid-migration and is healed from the WAL checkpoints before the
    /// split resumes. Returns the extended server index of each new
    /// range owner and records a `shard_split` event per cutover.
    ///
    /// # Errors
    ///
    /// [`DistaError::Config`] if a split needs more than the plan's
    /// repair budget; Taint Map errors that healing cannot absorb.
    ///
    /// # Panics
    ///
    /// Panics if a listed class is out of range or the cluster was shut
    /// down.
    pub fn reshard(&mut self, plan: &ReshardPlan) -> Result<Vec<usize>, DistaError> {
        let mut new_servers = Vec::with_capacity(plan.splits.len());
        for &class in &plan.splits {
            self.poll_chaos()?;
            let target = self
                .taint_map
                .as_mut()
                .expect("cluster already shut down")
                .begin_split(class)?;
            let mut repairs = 0usize;
            let over_budget = |e: DistaError, repairs: &mut usize| {
                *repairs += 1;
                (*repairs > plan.max_repairs).then_some(e)
            };
            let epoch = loop {
                self.poll_chaos()?;
                let tm = self.taint_map.as_mut().expect("cluster already shut down");
                if let Some((source, tgt)) = tm.active_split() {
                    if tm.primary_crashed(source) || tm.primary_crashed(tgt) {
                        if let Some(e) = over_budget(
                            DistaError::Config(format!(
                                "resharding class {class} exceeded {} repairs",
                                plan.max_repairs
                            )),
                            &mut repairs,
                        ) {
                            return Err(e);
                        }
                        tm.heal_split()?;
                        self.chaos_recorder
                            .record_with(|| ObsEventKind::SplitHealed { class });
                        continue;
                    }
                }
                match tm.split_step(plan.batch) {
                    Ok(true) => {}
                    Ok(false) if tm.split_lagging() => {}
                    Ok(false) => match tm.finish_split() {
                        Ok(epoch) => break epoch,
                        // A crash can land between catch-up and cutover;
                        // the next iteration heals and resumes.
                        Err(e) => {
                            if let Some(e) = over_budget(e.into(), &mut repairs) {
                                return Err(e);
                            }
                        }
                    },
                    // Target unreachable mid-batch — heal next round.
                    Err(e) => {
                        if let Some(e) = over_budget(e.into(), &mut repairs) {
                            return Err(e);
                        }
                    }
                }
            };
            let tm = self.taint_map.as_ref().expect("cluster already shut down");
            let lo_gid = tm.class_table(class).tail().lo_gid;
            self.chaos_recorder
                .record_with(|| ObsEventKind::ShardSplit {
                    class,
                    target,
                    lo_gid,
                    epoch,
                });
            new_servers.push(target);
        }
        self.mirror_taintmap_metrics();
        Ok(new_servers)
    }

    /// Folds every live Taint Map server's WAL into a fresh snapshot
    /// and truncates the log (crashed primaries are skipped — their
    /// logs compact after restart). Records one `wal_compacted` event
    /// per server; returns the total records snapshotted.
    ///
    /// # Errors
    ///
    /// [`DistaError::TaintMap`] if the deployment has no write-ahead
    /// snapshots ([`ClusterBuilder::taint_map_snapshots`]).
    pub fn compact_taint_map(&self) -> Result<u64, DistaError> {
        let tm = self.taint_map.as_ref().expect("cluster already shut down");
        let mut total = 0;
        for shard in 0..tm.server_count() {
            if tm.primary_crashed(shard) {
                continue;
            }
            let records = tm.compact_shard(shard)?;
            self.chaos_recorder
                .record_with(|| ObsEventKind::WalCompacted { shard, records });
            total += records;
        }
        self.mirror_taintmap_metrics();
        Ok(total)
    }

    /// Mirrors Taint Map deployment-level counters — migration volume,
    /// per-class epochs, redirect/stale-epoch traffic, compactions —
    /// into the metrics registry under `node="taintmap"`, where the
    /// telemetry plane's endpoint agent picks them up for scrapes.
    fn mirror_taintmap_metrics(&self) {
        let Some(reg) = self.observability.registry() else {
            return;
        };
        let Some(tm) = &self.taint_map else {
            return;
        };
        let labels: &[(&str, &str)] = &[("node", "taintmap")];
        let rs = tm.reshard_stats();
        reg.gauge_with("taintmap_splits_completed", labels)
            .set(rs.splits_completed as f64);
        reg.gauge_with("taintmap_records_transferred", labels)
            .set(rs.records_transferred as f64);
        for (class, epoch) in rs.class_epochs.iter().enumerate() {
            let class = class.to_string();
            reg.gauge_with(
                "taintmap_class_epoch",
                &[("node", "taintmap"), ("class", &class)],
            )
            .set(*epoch as f64);
        }
        let ss = tm.stats();
        reg.gauge_with("taintmap_server_moved_redirects", labels)
            .set(ss.moved_redirects as f64);
        reg.gauge_with("taintmap_server_stale_epochs", labels)
            .set(ss.stale_epochs as f64);
        reg.gauge_with("taintmap_server_double_writes", labels)
            .set(ss.double_writes as f64);
        reg.gauge_with("taintmap_server_transferred_in", labels)
            .set(ss.transferred_in as f64);
        reg.gauge_with("taintmap_server_compactions", labels)
            .set(ss.compactions as f64);
    }

    /// Crashes Taint Map shard `shard`'s primary ungracefully (no
    /// drain, no handoff) and records a `shard_crashed` event. Restart
    /// it with [`Cluster::restart_shard`].
    ///
    /// # Panics
    ///
    /// Panics if the shard is already crashed or the cluster was shut
    /// down.
    pub fn crash_shard(&mut self, shard: usize) {
        self.taint_map
            .as_mut()
            .expect("cluster already shut down")
            .crash_primary(shard);
        self.chaos_recorder
            .record_with(|| ObsEventKind::ShardCrashed { shard });
    }

    /// Restarts a crashed shard primary, replaying its write-ahead
    /// snapshot (only present with
    /// [`ClusterBuilder::taint_map_snapshots`]). Returns the number of
    /// replayed registrations and records a `shard_restarted` event.
    ///
    /// # Errors
    ///
    /// Transport errors while re-binding the primary.
    ///
    /// # Panics
    ///
    /// Panics if the shard is not crashed or the cluster was shut down.
    pub fn restart_shard(&mut self, shard: usize) -> Result<u64, DistaError> {
        let replayed = self
            .taint_map
            .as_mut()
            .expect("cluster already shut down")
            .restart_primary(shard)?;
        self.chaos_recorder
            .record_with(|| ObsEventKind::ShardRestarted { shard, replayed });
        Ok(replayed)
    }

    /// Crashes the named VM as seen from the network: its IP is isolated
    /// from every peer, so in-flight and future traffic to or from it
    /// fails. The process state survives; [`Cluster::restart_vm`]
    /// reconnects it.
    ///
    /// # Panics
    ///
    /// Panics if no VM has that name.
    pub fn crash_vm(&mut self, name: &str) {
        let vm = self
            .vm_named(name)
            .unwrap_or_else(|| panic!("no VM named {name:?}"));
        self.net.isolate(vm.ip());
    }

    /// Rejoins a crashed VM's IP to the network.
    ///
    /// # Panics
    ///
    /// Panics if no VM has that name.
    pub fn restart_vm(&mut self, name: &str) {
        let vm = self
            .vm_named(name)
            .unwrap_or_else(|| panic!("no VM named {name:?}"));
        self.net.rejoin(vm.ip());
    }

    /// Runs every VM's pending-sentinel reconciler (degraded lookups
    /// stamped while a shard was unreachable); returns how many
    /// sentinels resolved to their real taints cluster-wide.
    ///
    /// # Errors
    ///
    /// Non-transport Taint Map errors from a reachable shard.
    pub fn reconcile_pending(&self) -> Result<u64, DistaError> {
        let mut resolved = 0;
        for vm in &self.vms {
            if let Some(client) = vm.taint_map() {
                resolved += client.reconcile_pending()?;
            }
        }
        Ok(resolved)
    }

    /// Total gids currently degraded to a pending sentinel across all
    /// VMs.
    pub fn pending_gids(&self) -> usize {
        self.vms
            .iter()
            .filter_map(|vm| vm.taint_map())
            .map(|c| c.pending_count())
            .sum()
    }

    /// Stops the telemetry plane (agents flush their final deltas
    /// first) and the Taint Map deployment.
    pub fn shutdown(mut self) {
        if let Some(plane) = self.telemetry.take() {
            plane.shutdown();
        }
        if let Some(tm) = self.taint_map.take() {
            tm.shutdown();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dista_taint::TagValue;

    #[test]
    fn builder_creates_named_nodes() {
        let cluster = Cluster::builder(Mode::Dista)
            .nodes("node", 3)
            .build()
            .unwrap();
        assert_eq!(cluster.len(), 3);
        assert!(!cluster.is_empty());
        assert_eq!(cluster.vm(0).name(), "node1");
        assert_eq!(cluster.vm(2).ip(), [10, 0, 0, 3]);
        assert!(cluster.vm_named("node2").is_some());
        assert!(cluster.vm_named("nodeX").is_none());
        cluster.shutdown();
    }

    #[test]
    fn all_modes_build() {
        for mode in [Mode::Original, Mode::Phosphor, Mode::Dista] {
            let cluster = Cluster::builder(mode)
                .node("n", [10, 0, 0, 1])
                .build()
                .unwrap();
            assert_eq!(cluster.mode(), mode);
            assert_eq!(cluster.vm(0).mode(), mode);
            cluster.shutdown();
        }
    }

    #[test]
    fn taints_resolve_through_cluster_taint_map() {
        let cluster = Cluster::builder(Mode::Dista).nodes("n", 2).build().unwrap();
        let t = cluster.vm(0).store().mint_source_taint(TagValue::str("x"));
        let gid = cluster.vm(0).taint_map().unwrap().global_id_for(t).unwrap();
        let resolved = cluster.vm(1).taint_map().unwrap().taint_for(gid).unwrap();
        assert_eq!(
            cluster.vm(1).store().tag_values(resolved),
            vec!["x".to_string()]
        );
        assert_eq!(cluster.taint_map().stats().global_taints, 1);
        cluster.shutdown();
    }

    #[test]
    fn sharded_cluster_resolves_across_nodes() {
        let cluster = Cluster::builder(Mode::Dista)
            .nodes("n", 2)
            .taint_map_shards(4)
            .taint_map_standby(true)
            .build()
            .unwrap();
        assert_eq!(cluster.taint_map().shard_count(), 4);
        let taints: Vec<_> = (0..16)
            .map(|i| cluster.vm(0).store().mint_source_taint(TagValue::Int(i)))
            .collect();
        let gids = cluster
            .vm(0)
            .taint_map()
            .unwrap()
            .global_ids_for(&taints)
            .unwrap();
        let resolved = cluster
            .vm(1)
            .taint_map()
            .unwrap()
            .taints_for(&gids)
            .unwrap();
        for (i, t) in resolved.iter().enumerate() {
            assert_eq!(cluster.vm(1).store().tag_values(*t), vec![i.to_string()]);
        }
        assert_eq!(cluster.taint_map().stats().global_taints, 16);
        cluster.shutdown();
    }

    #[test]
    fn reshard_migrates_live_gids_and_compacts() {
        let mut cluster = Cluster::builder(Mode::Dista)
            .nodes("n", 2)
            .taint_map_shards(2)
            .taint_map_snapshots(true)
            .observability(ObsConfig::default())
            .build()
            .unwrap();
        let taints: Vec<_> = (0..64)
            .map(|i| cluster.vm(0).store().mint_source_taint(TagValue::Int(i)))
            .collect();
        let gids = cluster
            .vm(0)
            .taint_map()
            .unwrap()
            .global_ids_for(&taints)
            .unwrap();

        let new_servers = cluster
            .reshard(&ReshardPlan::new().split(0).split(1).batch(16))
            .unwrap();
        assert_eq!(new_servers, vec![2, 3]);
        let rs = cluster.taint_map().reshard_stats();
        assert_eq!(rs.splits_completed, 2);
        assert!(rs.records_transferred > 0);
        assert_eq!(rs.class_epochs, vec![1, 1]);

        // Every pre-split gid still resolves from the other node, via
        // Moved redirects against its stale shard map.
        let resolved = cluster
            .vm(1)
            .taint_map()
            .unwrap()
            .taints_for(&gids)
            .unwrap();
        for (i, t) in resolved.iter().enumerate() {
            assert_eq!(cluster.vm(1).store().tag_values(*t), vec![i.to_string()]);
        }

        // Compaction folds every live WAL and the counters surface in
        // the metrics dump and event log.
        let folded = cluster.compact_taint_map().unwrap();
        assert!(folded >= 64, "snapshot covers live records: {folded}");
        let dump = cluster.metrics_dump();
        let text = dump.render_text();
        assert!(text.contains("taintmap_splits_completed{node=taintmap} 2.0000"));
        assert!(text.contains("taintmap_server_compactions{node=taintmap}"));
        let events = cluster.export_jsonl();
        assert!(events.contains("\"event\":\"shard_split\""));
        assert!(events.contains("\"event\":\"wal_compacted\""));
        cluster.shutdown();
    }

    #[test]
    fn conflicting_taint_map_settings_are_rejected() {
        let err = Cluster::builder(Mode::Dista)
            .nodes("n", 1)
            .taint_map_shards(2)
            .taint_map_endpoint(TaintMapEndpoint::builder().shards(4))
            .build()
            .unwrap_err();
        match err {
            DistaError::Config(msg) => {
                assert!(msg.contains("taint_map_shards"), "names the culprit: {msg}")
            }
            other => panic!("expected Config error, got {other:?}"),
        }

        let err = Cluster::builder(Mode::Dista)
            .taint_map_addr(NodeAddr::new([10, 0, 0, 99], 7777))
            .taint_map_standby(true)
            .taint_map_endpoint(TaintMapEndpoint::builder())
            .build()
            .unwrap_err();
        match err {
            DistaError::Config(msg) => {
                assert!(msg.contains("taint_map_addr") && msg.contains("taint_map_standby"))
            }
            other => panic!("expected Config error, got {other:?}"),
        }

        let err = Cluster::builder(Mode::Dista)
            .taint_map_shards(0)
            .build()
            .unwrap_err();
        assert!(matches!(err, DistaError::Config(_)));
    }

    #[test]
    fn conflicting_wire_protocol_settings_are_rejected() {
        // Pinned v2 skips the handshake, so it cannot share a cluster
        // with v1 or Negotiate nodes.
        let err = Cluster::builder(Mode::Dista)
            .nodes("n", 2)
            .wire_protocol(WireProtocol::V2)
            .node_wire_protocol("n2", WireProtocol::V1)
            .build()
            .unwrap_err();
        match err {
            DistaError::Config(msg) => {
                assert!(msg.contains("wire_protocol"), "names the knob: {msg}");
                assert!(
                    msg.contains("n1") && msg.contains("n2"),
                    "names nodes: {msg}"
                );
            }
            other => panic!("expected Config error, got {other:?}"),
        }

        let err = Cluster::builder(Mode::Dista)
            .nodes("n", 2)
            .wire_protocol(WireProtocol::Negotiate)
            .node_wire_protocol("n1", WireProtocol::V2)
            .build()
            .unwrap_err();
        assert!(matches!(err, DistaError::Config(_)));

        let err = Cluster::builder(Mode::Dista)
            .nodes("n", 1)
            .node_wire_protocol("ghost", WireProtocol::V2)
            .build()
            .unwrap_err();
        match err {
            DistaError::Config(msg) => assert!(msg.contains("ghost"), "{msg}"),
            other => panic!("expected Config error, got {other:?}"),
        }

        let err = Cluster::builder(Mode::Dista)
            .nodes("n", 1)
            .node_wire_protocol("n1", WireProtocol::V1)
            .node_wire_protocol("n1", WireProtocol::Negotiate)
            .build()
            .unwrap_err();
        assert!(matches!(err, DistaError::Config(_)));
    }

    #[test]
    fn mixed_negotiate_and_v1_cluster_builds() {
        // The supported partial-upgrade shape: Negotiate everywhere,
        // with un-upgraded pinned-v1 stragglers.
        let cluster = Cluster::builder(Mode::Dista)
            .nodes("n", 3)
            .wire_protocol(WireProtocol::Negotiate)
            .node_wire_protocol("n3", WireProtocol::V1)
            .build()
            .unwrap();
        assert_eq!(cluster.vm(0).wire_protocol(), WireProtocol::Negotiate);
        assert_eq!(cluster.vm(2).wire_protocol(), WireProtocol::V1);
        cluster.shutdown();

        let cluster = Cluster::builder(Mode::Dista)
            .nodes("n", 2)
            .wire_protocol(WireProtocol::V2)
            .build()
            .unwrap();
        assert_eq!(cluster.vm(1).wire_protocol(), WireProtocol::V2);
        cluster.shutdown();
    }

    #[test]
    fn endpoint_builder_passthrough_works() {
        let cluster = Cluster::builder(Mode::Dista)
            .nodes("n", 1)
            .taint_map_endpoint(TaintMapEndpoint::builder().shards(2))
            .build()
            .unwrap();
        assert_eq!(cluster.taint_map().shard_count(), 2);
        cluster.shutdown();
    }

    #[test]
    fn observed_cluster_reconstructs_provenance() {
        use dista_jre::{InputStream, OutputStream};
        use dista_taint::{Payload, TaintedBytes};

        let cluster = Cluster::builder(Mode::Dista)
            .nodes("n", 2)
            .observability(ObsConfig::default())
            .build()
            .unwrap();
        let (tx_vm, rx_vm) = (cluster.vm(0), cluster.vm(1));
        let server =
            dista_jre::ServerSocket::bind(rx_vm, NodeAddr::new([10, 0, 0, 2], 80)).unwrap();
        let client = dista_jre::Socket::connect(tx_vm, server.local_addr()).unwrap();
        let conn = server.accept().unwrap();
        let secret = tx_vm.taint_source(TagValue::str("secret"));
        client
            .output_stream()
            .write(&Payload::Tainted(TaintedBytes::uniform(b"payload", secret)))
            .unwrap();
        let got = conn.input_stream().read_exact(7).unwrap();
        let received = got.taint_union(rx_vm.store());
        assert!(rx_vm.taint_sink("LOG.info", received));

        let gid = tx_vm.taint_map().unwrap().global_id_for(secret).unwrap().0;
        let trace = cluster.provenance(gid);
        assert!(!trace.is_empty());
        assert_eq!(trace.crossings(), 1);
        assert_eq!(trace.sinks(), vec![("n2", "LOG.info")]);
        assert_eq!(trace.nodes(), vec!["n1", "n2"]);

        let dump = cluster.metrics_dump();
        assert!(dump.counter_total("boundary_wire_bytes_out") >= 35);
        assert!(
            dump.gauge_value("taint_tree_tags", &[("node", "n1")])
                .unwrap()
                >= 1.0
        );
        assert!(cluster.export_jsonl().contains("boundary_encode"));
        assert!(cluster.export_chrome_trace().contains("\"ph\""));
        assert!(cluster.obs_report().contains("== events =="));
        cluster.shutdown();
    }

    #[test]
    fn telemetry_plane_scrapes_live_cluster_metrics() {
        use dista_jre::{InputStream, OutputStream};
        use dista_taint::{Payload, TaintedBytes};
        use std::time::Duration;

        let cluster = Cluster::builder(Mode::Dista)
            .nodes("n", 2)
            .observability(ObsConfig::default())
            .telemetry(crate::telemetry::TelemetryConfig {
                interval: Duration::from_millis(5),
                ..Default::default()
            })
            .build()
            .unwrap();
        let (tx_vm, rx_vm) = (cluster.vm(0), cluster.vm(1));
        let server =
            dista_jre::ServerSocket::bind(rx_vm, NodeAddr::new([10, 0, 0, 2], 80)).unwrap();
        let client = dista_jre::Socket::connect(tx_vm, server.local_addr()).unwrap();
        let conn = server.accept().unwrap();
        let secret = tx_vm.taint_source(TagValue::str("secret"));
        client
            .output_stream()
            .write(&Payload::Tainted(TaintedBytes::uniform(b"payload", secret)))
            .unwrap();
        conn.input_stream().read_exact(7).unwrap();

        // The scrape endpoint is reachable from inside the simulation
        // and eventually reflects the boundary counters pushed by the
        // sender's agent.
        let text = loop {
            let text = cluster.scrape_text().unwrap();
            if text.contains("boundary_wire_bytes_out{node=\"n1\"}") {
                break text;
            }
            std::thread::sleep(Duration::from_millis(5));
        };
        assert!(text.contains("dista_collector_frames_ingested_total"));
        let json = cluster.scrape_json().unwrap();
        assert!(json.contains("\"nodes\":[\"n1\"") || json.contains("\"n1\""));

        let plane = cluster.telemetry().unwrap();
        // Two VM agents plus the Taint Map deployment agent.
        assert_eq!(plane.agents().len(), 3);
        let collector = plane.collector().clone();
        cluster.shutdown();
        assert!(collector.frames_ingested() >= 1);
        assert_eq!(collector.parse_errors(), 0);
        assert!(
            collector
                .latest_dump()
                .counter_total("boundary_wire_bytes_out")
                >= 35
        );
    }

    #[test]
    fn telemetry_without_observability_is_rejected() {
        let err = Cluster::builder(Mode::Dista)
            .nodes("n", 1)
            .telemetry(crate::telemetry::TelemetryConfig::default())
            .build()
            .unwrap_err();
        match err {
            DistaError::Config(msg) => assert!(msg.contains("observability"), "{msg}"),
            other => panic!("expected Config error, got {other:?}"),
        }

        let cluster = Cluster::builder(Mode::Dista).nodes("n", 1).build().unwrap();
        assert!(cluster.telemetry().is_none());
        assert!(matches!(cluster.scrape_text(), Err(DistaError::Config(_))));
        cluster.shutdown();
    }

    #[test]
    fn plain_cluster_has_no_events() {
        let cluster = Cluster::builder(Mode::Original)
            .nodes("n", 2)
            .observability(ObsConfig::default())
            .build()
            .unwrap();
        assert!(cluster.obs_events().is_empty());
        assert_eq!(cluster.provenance(1).crossings(), 0);
        cluster.shutdown();
    }

    #[test]
    fn sink_reports_aggregate() {
        let cluster = Cluster::builder(Mode::Phosphor)
            .nodes("n", 2)
            .build()
            .unwrap();
        let t = cluster.vm(1).store().mint_source_taint(TagValue::str("s"));
        cluster.vm(1).taint_sink("check", t);
        let reports = cluster.sink_reports();
        assert_eq!(reports.len(), 2);
        assert_eq!(reports[1].1.events.len(), 1);
        assert_eq!(cluster.total_tainted_sink_events(), 1);
        cluster.shutdown();
    }
}

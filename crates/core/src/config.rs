//! Launch-script configuration — the usability surface (paper §V-E).
//!
//! Applying DisTA to a system means editing its launch script: point
//! `JAVA` at the instrumented JRE and add two JVM flags
//! (`-Xbootclasspath/a:DisTA.jar` and `-javaagent:DisTA.jar`), plus the
//! source/sink spec files. The paper reports ~10 modified LOC per system
//! (3 for ZooKeeper). [`DistaConfig`] produces those script lines so the
//! usability experiment can *count* them rather than assert them.

use dista_taint::{ParseSpecError, SourceSinkSpec};

/// The per-system DisTA deployment configuration.
#[derive(Debug, Clone, Default)]
pub struct DistaConfig {
    system: String,
    server_roles: Vec<String>,
    client_roles: Vec<String>,
    scripts: Vec<String>,
    sources: String,
    sinks: String,
}

impl DistaConfig {
    /// Starts a configuration for the named system.
    pub fn new(system: impl Into<String>) -> Self {
        DistaConfig {
            system: system.into(),
            ..Default::default()
        }
    }

    /// Registers a launch script whose `JAVA` binary line must point at
    /// the instrumented JRE. Systems that split their environment setup
    /// over several scripts pay one such line per script (the bulk of
    /// the paper's ~10-LOC average).
    pub fn script(mut self, name: impl Into<String>) -> Self {
        self.scripts.push(name.into());
        self
    }

    /// Registers a server-side launch role (e.g. `SERVER_JVMFLAGS`).
    pub fn server_role(mut self, role: impl Into<String>) -> Self {
        self.server_roles.push(role.into());
        self
    }

    /// Registers a client-side launch role (e.g. `CLIENT_JVMFLAGS`).
    pub fn client_role(mut self, role: impl Into<String>) -> Self {
        self.client_roles.push(role.into());
        self
    }

    /// Sets the taint-source spec file contents.
    pub fn sources(mut self, spec: impl Into<String>) -> Self {
        self.sources = spec.into();
        self
    }

    /// Sets the taint-sink spec file contents.
    pub fn sinks(mut self, spec: impl Into<String>) -> Self {
        self.sinks = spec.into();
        self
    }

    /// The system name.
    pub fn system(&self) -> &str {
        &self.system
    }

    /// Parses the source/sink files into a [`SourceSinkSpec`].
    ///
    /// # Errors
    ///
    /// The first malformed descriptor line.
    pub fn spec(&self) -> Result<SourceSinkSpec, ParseSpecError> {
        SourceSinkSpec::parse(&self.sources, &self.sinks)
    }

    /// Generates the launch-script modification — the exact lines a user
    /// adds to the system's environment script (cf. the `zkEnv.sh`
    /// listing in §V-E).
    pub fn launch_script(&self) -> LaunchScript {
        let mut lines = Vec::new();
        let scripts = if self.scripts.is_empty() {
            &["env.sh".to_string()][..]
        } else {
            &self.scripts[..]
        };
        for script in scripts {
            lines.push(format!("JAVA=\"$INST_JAVA_HOME/bin/java\"  # {script}"));
        }
        let flags = "-Xbootclasspath/a:DisTA.jar \
                     -javaagent:DisTA.jar=taintSources=sources.txt,taintSinks=sinks.txt";
        for role in &self.server_roles {
            lines.push(format!("{role}=\"{flags}\""));
        }
        for role in &self.client_roles {
            lines.push(format!("{role}=\"{flags}\""));
        }
        LaunchScript {
            system: self.system.clone(),
            lines,
        }
    }
}

/// The generated launch-script modification for one system.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LaunchScript {
    /// System name.
    pub system: String,
    /// The added/modified script lines.
    pub lines: Vec<String>,
}

impl LaunchScript {
    /// Modified lines of code — the usability metric of Table `U1`.
    pub fn loc(&self) -> usize {
        self.lines.len()
    }

    /// Renders the script fragment.
    pub fn render(&self) -> String {
        self.lines.join("\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn zookeeper_config() -> DistaConfig {
        DistaConfig::new("ZooKeeper")
            .server_role("SERVER_JVMFLAGS")
            .client_role("CLIENT_JVMFLAGS")
            .sources("FileInputStream.read\n")
            .sinks("LOG.info\n")
    }

    #[test]
    fn zookeeper_needs_3_loc() {
        // §V-E: "we only modify 3 LOC in ZooKeeper's environment
        // configuration script file zkEnv.sh".
        let script = zookeeper_config().launch_script();
        assert_eq!(script.loc(), 3);
        assert!(script.lines[0].contains("INST_JAVA_HOME"));
        assert!(script.lines[1].contains("-javaagent:DisTA.jar"));
        assert!(script.lines[1].contains("-Xbootclasspath/a:DisTA.jar"));
    }

    #[test]
    fn multi_script_systems_pay_one_java_line_each() {
        let cfg = DistaConfig::new("Yarn")
            .script("hadoop-env.sh")
            .script("yarn-env.sh")
            .script("mapred-env.sh")
            .server_role("YARN_RESOURCEMANAGER_OPTS");
        let script = cfg.launch_script();
        assert_eq!(script.loc(), 4);
        assert_eq!(
            script
                .lines
                .iter()
                .filter(|l| l.contains("INST_JAVA_HOME"))
                .count(),
            3
        );
    }

    #[test]
    fn spec_parses_from_files() {
        let spec = zookeeper_config().spec().unwrap();
        assert!(spec.is_source("FileInputStream", "read"));
        assert!(spec.is_sink("LOG", "info"));
    }

    #[test]
    fn bad_spec_is_reported() {
        let cfg = DistaConfig::new("X").sources("notadescriptor\n");
        assert!(cfg.spec().is_err());
    }

    #[test]
    fn render_joins_lines() {
        let script = zookeeper_config().launch_script();
        assert_eq!(script.render().lines().count(), 3);
    }
}
